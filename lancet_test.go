package lancet

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// ExampleNewSession builds a session for the paper's default configuration
// and reports what was instantiated. A non-positive batch selects the
// paper's per-GPU batch size for the cluster's GPU type.
func ExampleNewSession() {
	sess, err := NewSession(GPT2SMoE(0), MustCluster("V100", 16))
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch %d, %d experts, capacity %d\n",
		sess.Config.BatchPerGPU, sess.Built.TotalExperts, sess.Built.CapacityC)
	// Output: batch 16, 32 experts, capacity 320
}

// ExampleSession_Baseline plans the model under a comparison framework.
// Tutel searches its all-to-all overlap degree over {1, 2, 4, 8} using the
// deterministic predictor, so the chosen degree is stable.
func ExampleSession_Baseline() {
	sess, err := NewSession(GPT2SMoE(0), MustCluster("V100", 16))
	if err != nil {
		panic(err)
	}
	plan, err := sess.Baseline(FrameworkTutel)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s picked overlap degree %d\n", plan.Name, plan.TutelDegree)
	// Output: Tutel picked overlap degree 2
}

func newTestSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(GPT2SMoE(0), MustCluster("V100", 16))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionDefaults(t *testing.T) {
	s := newTestSession(t)
	if s.Config.BatchPerGPU != 16 {
		t.Errorf("paper batch size on V100 should be 16, got %d", s.Config.BatchPerGPU)
	}
	if s.Built.TotalExperts != 32 {
		t.Errorf("16 GPUs x 2 experts = 32, got %d", s.Built.TotalExperts)
	}
}

func TestLancetBeatsAllBaselines(t *testing.T) {
	s := newTestSession(t)
	lan, err := s.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	lanMs := lan.MustSimulate(1).IterationMs
	for _, fw := range []string{FrameworkDeepSpeed, FrameworkRAF, FrameworkTutel} {
		p, err := s.Baseline(fw)
		if err != nil {
			t.Fatal(err)
		}
		r := p.MustSimulate(1)
		if lanMs >= r.IterationMs {
			t.Errorf("Lancet (%.1f ms) not faster than %s (%.1f ms)", lanMs, fw, r.IterationMs)
		}
	}
}

func TestSpeedupInPaperRange(t *testing.T) {
	s := newTestSession(t)
	lan, err := s.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tut, err := s.Baseline(FrameworkTutel)
	if err != nil {
		t.Fatal(err)
	}
	speedup := tut.MustSimulate(1).IterationMs / lan.MustSimulate(1).IterationMs
	// Paper: 1.1x - 1.3x over the best baseline. Allow generous margins for
	// the simulated substrate, but the magnitude must be plausible.
	if speedup < 1.02 || speedup > 1.8 {
		t.Errorf("speedup over Tutel = %.2fx, outside plausible band", speedup)
	}
}

func TestTutelBeatsSequential(t *testing.T) {
	s := newTestSession(t)
	tut, err := s.Baseline(FrameworkTutel)
	if err != nil {
		t.Fatal(err)
	}
	raf, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	if tut.MustSimulate(1).IterationMs >= raf.MustSimulate(1).IterationMs {
		t.Error("Tutel's a2a/expert overlap should beat sequential RAF")
	}
	if tut.TutelDegree < 2 {
		t.Errorf("Tutel degree search picked %d; expected overlap to pay off", tut.TutelDegree)
	}
}

func TestUnknownFramework(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Baseline("megatron"); err == nil {
		t.Error("unknown framework must error")
	}
}

func TestPredictionAccuracy(t *testing.T) {
	// Fig. 14: predicted vs simulated-actual iteration time within a few
	// percent.
	s := newTestSession(t)
	for _, fw := range []string{FrameworkRAF, FrameworkTutel, FrameworkLancet} {
		p, err := s.Baseline(fw)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := p.PredictUs()
		if err != nil {
			t.Fatal(err)
		}
		act := p.MustSimulate(7).IterationMs * 1000
		rel := math.Abs(pred-act) / act
		if rel > 0.15 {
			t.Errorf("%s: prediction error %.1f%% too large", fw, rel*100)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	// Fig. 16: full <= each single optimization <= baseline.
	s := newTestSession(t)
	full, err := s.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	noDW, err := s.Lancet(Options{DisableDWSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	noPipe, err := s.Lancet(Options{DisablePartition: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	fullMs := full.MustSimulate(3).IterationMs
	noDWMs := noDW.MustSimulate(3).IterationMs
	noPipeMs := noPipe.MustSimulate(3).IterationMs
	baseMs := base.MustSimulate(3).IterationMs
	if fullMs >= noDWMs || fullMs >= noPipeMs {
		t.Errorf("full (%0.1f) should beat ablations (-dW %0.1f, -pipe %0.1f)", fullMs, noDWMs, noPipeMs)
	}
	if noDWMs >= baseMs || noPipeMs >= baseMs {
		t.Errorf("each single optimization should beat baseline %0.1f (-dW %0.1f, -pipe %0.1f)",
			baseMs, noDWMs, noPipeMs)
	}
}

func TestLancetNonOverlappedCommReduction(t *testing.T) {
	s := newTestSession(t)
	lan, err := s.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	raf, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	l, r := lan.MustSimulate(5), raf.MustSimulate(5)
	reduction := 1 - l.NonOverlappedA2AMs/r.NonOverlappedA2AMs
	if reduction < 0.3 {
		t.Errorf("non-overlapped a2a reduction %.0f%%, want >= 30%%", reduction*100)
	}
}

func TestIrregularPayloadsShrinkLancetComm(t *testing.T) {
	// Lancet's irregular all-to-all drops padding: its total a2a busy time
	// must be below RAF's for the same model.
	s := newTestSession(t)
	lan, err := s.Lancet(Options{DisablePartition: true, DisableDWSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	raf, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	if l, r := lan.MustSimulate(2).AllToAllMs, raf.MustSimulate(2).AllToAllMs; l >= r {
		t.Errorf("irregular a2a (%.1f ms) should be cheaper than padded (%.1f ms)", l, r)
	}
}

func TestBPRGateRestrictsButStillGains(t *testing.T) {
	cfg := GPT2SMoE(0)
	cfg.Gate = GateBatchPriority
	s, err := NewSession(cfg, MustCluster("V100", 16))
	if err != nil {
		t.Fatal(err)
	}
	lan, err := s.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	raf, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	if lan.MustSimulate(1).IterationMs >= raf.MustSimulate(1).IterationMs {
		t.Error("Lancet with BPR gating should still beat the baseline (Fig. 12)")
	}
}

func TestRoutingProfileSaneAndCached(t *testing.T) {
	s := newTestSession(t)
	p, err := s.profile(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.shares) != 4 {
		t.Fatalf("got %d micro shares, want 4", len(p.shares))
	}
	total := 0.0
	for _, f := range p.shares {
		if f < 0 || f > 1 {
			t.Errorf("share %v out of [0,1]", f)
		}
		total += f
	}
	// Total routed tokens never exceed the padded buffer.
	if total > 1.0001 {
		t.Errorf("micro shares sum to %v > 1", total)
	}
	if p.routed == 0 || len(p.counts) != p.devices {
		t.Errorf("profile incomplete: %+v", p)
	}
	p2, err := s.profile(4)
	if err != nil {
		t.Fatal(err)
	}
	if p != p2 {
		t.Error("profile must be cached")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	s := newTestSession(t)
	p, err := s.Baseline(FrameworkRAF)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.ChromeTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(p.Graph.Instrs) {
		t.Errorf("trace has %d events for %d instrs", len(doc.TraceEvents), len(p.Graph.Instrs))
	}
}

func TestDeepSpeedOOMOnA100GPT2S(t *testing.T) {
	// Paper Sec. 7.1: DeepSpeed's higher memory footprint OOMs for
	// GPT2-S-MoE on A100 (batch 24) while the others fit.
	s, err := NewSession(GPT2SMoE(0), MustCluster("A100", 16))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Baseline(FrameworkDeepSpeed)
	if err != nil {
		t.Fatal(err)
	}
	tut, err := s.Baseline(FrameworkTutel)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.OOM {
		t.Error("DeepSpeed should OOM on A100 GPT2-S-MoE (batch 24)")
	}
	if tut.OOM {
		t.Error("Tutel should fit on A100 GPT2-S-MoE")
	}
	// And on V100 (batch 16) DeepSpeed fits.
	sv := newTestSession(t)
	dsv, err := sv.Baseline(FrameworkDeepSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if dsv.OOM {
		t.Error("DeepSpeed should fit on V100 GPT2-S-MoE (batch 16)")
	}
}

func TestOptimizationTimeScalesWithLayers(t *testing.T) {
	sS := newTestSession(t)
	pS, err := sS.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sL, err := NewSession(GPT2LMoE(0), MustCluster("V100", 16))
	if err != nil {
		t.Fatal(err)
	}
	pL, err := sL.Lancet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pL.DPEvaluations <= pS.DPEvaluations {
		t.Errorf("GPT2-L should need more DP evaluations: %d vs %d", pL.DPEvaluations, pS.DPEvaluations)
	}
}

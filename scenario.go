package lancet

import (
	"fmt"
	"math"
	"sort"
)

// scenarioSimRuns is the seeded-iteration count every scenario metric
// averages over: enough to smooth per-iteration jitter, cheap enough for
// the serving layer's what-if path.
const scenarioSimRuns = 3

// NodeLossReport is the outcome of a node-loss what-if (DESIGN.md §17): the
// stale plan replayed on the degraded fleet versus a warm-started re-plan,
// with the intact fleet as the reference. All latencies are means over
// scenarioSimRuns seeded iterations, so identical inputs reproduce
// identical reports.
type NodeLossReport struct {
	// LostNodes is the sorted, deduplicated list of dropped global node
	// indices.
	LostNodes []int
	// LostGPUs and SurvivorGPUs decompose the fleet after the loss.
	LostGPUs     int
	SurvivorGPUs int
	// IntactMs is the base plan's iteration time on the intact fleet.
	IntactMs float64
	// DegradedMs replays the stale plan's pipelines verbatim on the
	// survivors (Options.FixedPipelines), with the per-GPU batch scaled up
	// so the survivors still carry at least the intact fleet's global
	// token budget.
	DegradedMs float64
	// ReplannedMs is a fresh plan for the degraded fleet, warm-started
	// from the stale plan's pipelines (Options.Hint).
	ReplannedMs float64
	// DegradedSlowdown is DegradedMs / IntactMs — the price of losing the
	// nodes without re-planning.
	DegradedSlowdown float64
	// ReplanSpeedup is DegradedMs / ReplannedMs — what re-planning buys
	// back on the degraded fleet.
	ReplanSpeedup float64
	// ReplanEvaluations and ColdEvaluations are the warm-started and cold
	// re-plan's partition-DP evaluation counts — the re-plan cost the
	// warm start cuts (DESIGN.md §14).
	ReplanEvaluations int
	ColdEvaluations   int

	// Base, Degraded and Replanned expose the three underlying plans.
	Base      *Plan
	Degraded  *Plan
	Replanned *Plan
}

// normalizeLostNodes sorts and deduplicates a lost-node list.
func normalizeLostNodes(lost []int) []int {
	out := append([]int(nil), lost...)
	sort.Ints(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// NodeLoss answers the node-loss what-if for opts.LostNodes: it drops the
// listed nodes from the session's cluster, replays the base plan's
// pipelines verbatim on the degraded fleet, re-plans warm-started from
// those same pipelines, and reports the three latencies plus the re-plan's
// DP cost (DESIGN.md §17). The degraded session's per-GPU batch is scaled
// up by ceil(intact GPUs / survivor GPUs) so the survivors carry at least
// the intact fleet's global token budget — losing nodes can therefore
// never predict faster than the intact fleet. base, when non-nil, is a
// plan previously computed from this session with the same options (minus
// LostNodes); nil plans it here. Sessions running a streamed workload
// profile are rejected: the histogram is shaped for the intact device
// count. Losing zero nodes degenerates to an exact replay: all three
// latencies coincide.
func (s *Session) NodeLoss(base *Plan, opts Options, seed int64) (*NodeLossReport, error) {
	if s.StreamedProfile() != nil {
		return nil, fmt.Errorf("lancet: node-loss what-if is not supported with a streamed workload profile (histogram is shaped for the intact fleet)")
	}
	lost := normalizeLostNodes(opts.LostNodes)
	baseOpts := opts
	baseOpts.LostNodes = nil
	baseOpts.FixedPipelines = nil
	if base == nil {
		var err error
		base, err = s.Lancet(baseOpts)
		if err != nil {
			return nil, fmt.Errorf("lancet: node-loss base plan: %w", err)
		}
	}
	dc, err := s.Cluster.RemoveNodes(lost)
	if err != nil {
		return nil, fmt.Errorf("lancet: node-loss: %w", err)
	}
	intactGPUs := s.Cluster.TotalGPUs()
	survivorGPUs := dc.TotalGPUs()
	cfg := s.Config
	cfg.BatchPerGPU = int(math.Ceil(float64(cfg.BatchPerGPU*intactGPUs) / float64(survivorGPUs)))
	ds, err := NewSession(cfg, dc)
	if err != nil {
		return nil, fmt.Errorf("lancet: node-loss degraded session: %w", err)
	}
	ds.WorkloadSkew = s.WorkloadSkew
	ds.WorkloadHotExpert = s.WorkloadHotExpert

	repOpts := baseOpts
	repOpts.Hint = nil
	repOpts.FixedPipelines = base.Pipelines
	degraded, err := ds.Lancet(repOpts)
	if err != nil {
		return nil, fmt.Errorf("lancet: node-loss degraded replay: %w", err)
	}
	warmOpts := baseOpts
	warmOpts.Hint = base.Pipelines
	replanned, err := ds.Lancet(warmOpts)
	if err != nil {
		return nil, fmt.Errorf("lancet: node-loss re-plan: %w", err)
	}
	cold, err := ds.Lancet(baseOpts)
	if err != nil {
		return nil, fmt.Errorf("lancet: node-loss cold re-plan: %w", err)
	}

	rep := &NodeLossReport{
		LostNodes:         lost,
		LostGPUs:          intactGPUs - survivorGPUs,
		SurvivorGPUs:      survivorGPUs,
		ReplanEvaluations: replanned.DPEvaluations,
		ColdEvaluations:   cold.DPEvaluations,
		Base:              base,
		Degraded:          degraded,
		Replanned:         replanned,
	}
	for _, m := range []struct {
		plan *Plan
		out  *float64
	}{
		{base, &rep.IntactMs},
		{degraded, &rep.DegradedMs},
		{replanned, &rep.ReplannedMs},
	} {
		st, err := m.plan.SimulateN(scenarioSimRuns, seed)
		if err != nil {
			return nil, fmt.Errorf("lancet: node-loss simulation: %w", err)
		}
		*m.out = st.MeanMs
	}
	if rep.IntactMs > 0 {
		rep.DegradedSlowdown = rep.DegradedMs / rep.IntactMs
	}
	if rep.ReplannedMs > 0 {
		rep.ReplanSpeedup = rep.DegradedMs / rep.ReplannedMs
	}
	return rep, nil
}

// ResizeStep is one fleet size of an elastic-resize sweep: the warm-started
// plan's iteration time, the pipelines it chose (the next step's hint), and
// the warm-vs-cold partition-DP evaluation counts — the re-plan cost curve
// hint chaining flattens (DESIGN.md §17).
type ResizeStep struct {
	GPUs            int
	IterationMs     float64
	Pipelines       []PipelineHint
	WarmEvaluations int
	ColdEvaluations int
}

// ElasticResize grows and shrinks a uniform fleet through the given GPU
// schedule, re-planning at each size warm-started from the previous size's
// chosen pipelines (exactly the chain /v1/sweep's warm_start mode runs),
// and reports the per-size latency plus the warm and cold DP evaluation
// counts. The per-GPU batch stays fixed, so the global batch scales with
// the fleet — the elasticity semantics of a data-parallel resize. Plans are
// byte-identical to cold ones (the warm-start invariant); only the DP
// effort differs.
func ElasticResize(cfg ModelConfig, gpuType string, schedule []int, opts Options, seed int64) ([]ResizeStep, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("lancet: empty resize schedule")
	}
	steps := make([]ResizeStep, 0, len(schedule))
	var hint []PipelineHint
	for _, gpus := range schedule {
		cl, err := NewCluster(gpuType, gpus)
		if err != nil {
			return nil, fmt.Errorf("lancet: resize to %d GPUs: %w", gpus, err)
		}
		sess, err := NewSession(cfg, cl)
		if err != nil {
			return nil, fmt.Errorf("lancet: resize to %d GPUs: %w", gpus, err)
		}
		warmOpts := opts
		warmOpts.Hint = hint
		warmOpts.LostNodes, warmOpts.FixedPipelines = nil, nil
		warm, err := sess.Lancet(warmOpts)
		if err != nil {
			return nil, fmt.Errorf("lancet: resize plan at %d GPUs: %w", gpus, err)
		}
		coldOpts := warmOpts
		coldOpts.Hint = nil
		cold, err := sess.Lancet(coldOpts)
		if err != nil {
			return nil, fmt.Errorf("lancet: resize cold plan at %d GPUs: %w", gpus, err)
		}
		st, err := warm.SimulateN(scenarioSimRuns, seed)
		if err != nil {
			return nil, fmt.Errorf("lancet: resize simulation at %d GPUs: %w", gpus, err)
		}
		steps = append(steps, ResizeStep{
			GPUs:            gpus,
			IterationMs:     st.MeanMs,
			Pipelines:       warm.Pipelines,
			WarmEvaluations: warm.DPEvaluations,
			ColdEvaluations: cold.DPEvaluations,
		})
		hint = warm.Pipelines
	}
	return steps, nil
}

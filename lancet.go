// Package lancet is a Go reproduction of "Lancet: Accelerating
// Mixture-of-Experts Training via Whole Graph Computation-Communication
// Overlapping" (MLSys 2024).
//
// Lancet optimizes MoE training iterations with two compiler passes over an
// instruction-sequence IR: scheduling weight-gradient computation to overlap
// backward-pass all-to-alls, and partitioning forward-pass operators —
// including non-MoE computation — into communication-computation pipelines
// chosen by dynamic programming.
//
// Because no GPU cluster is available, hardware is substituted with a
// calibrated analytic cost model and a discrete-event two-stream execution
// simulator (see DESIGN.md §3); the compiler passes themselves are faithful
// to the paper's algorithms.
//
// Typical use:
//
//	sess, _ := lancet.NewSession(lancet.GPT2SMoE(16), lancet.MustCluster("V100", 16))
//	plan, _ := sess.Lancet(lancet.Options{})
//	base, _ := sess.Baseline(lancet.FrameworkTutel)
//	fmt.Println(plan.MustSimulate(1).IterationMs, base.MustSimulate(1).IterationMs)
package lancet

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"lancet/internal/baselines"
	"lancet/internal/cost"
	"lancet/internal/hw"
	"lancet/internal/ir"
	"lancet/internal/model"
	"lancet/internal/moe"
	"lancet/internal/netsim"
	"lancet/internal/passes/commprio"
	"lancet/internal/passes/dwsched"
	"lancet/internal/passes/partition"
	"lancet/internal/sim"
	"lancet/internal/tensor"
	"lancet/internal/trace"
)

// Re-exported configuration types. External users interact with these; the
// internal packages stay private.
type (
	// ModelConfig specifies the benchmark model (see GPT2SMoE/GPT2LMoE).
	ModelConfig = model.Config
	// Cluster is the simulated hardware (see MustCluster).
	Cluster = hw.Cluster
	// Topology is the cluster's network hierarchy above the node boundary:
	// nodes per rack switch and the spine's oversubscription factor
	// (DESIGN.md §11). Attach one with Cluster.WithTopology; the zero value
	// is the flat fabric.
	Topology = hw.Topology
	// NodeClass is one homogeneous slice of a mixed-generation fleet
	// (DESIGN.md §12). Attach classes with Cluster.WithClasses or build a
	// mixed cluster from ParseClasses + NewHeteroCluster.
	NodeClass = hw.NodeClass
	// GateKind selects the MoE routing algorithm.
	GateKind = model.GateKind
)

// Gate kinds.
const (
	GateSwitch        = model.GateSwitch
	GateTop2          = model.GateTop2
	GateBatchPriority = model.GateBatchPriority
	GateRandom        = model.GateRandom
	GateHash          = model.GateHash
	GateExpertChoice  = model.GateExpertChoice
)

// Framework names accepted by Session.Baseline.
const (
	FrameworkDeepSpeed = "deepspeed"
	FrameworkRAF       = "raf"
	FrameworkTutel     = "tutel"
	FrameworkFasterMoE = "fastermoe"
	FrameworkLancet    = "lancet"
)

// Frameworks lists every framework name accepted by Session.Baseline and
// ParseFramework, in the paper's comparison order with Lancet last.
func Frameworks() []string {
	return []string{FrameworkDeepSpeed, FrameworkRAF, FrameworkTutel, FrameworkFasterMoE, FrameworkLancet}
}

// ParseFramework normalizes a user-supplied framework name, erroring on
// unknown values so CLIs and the serving layer can reject typos before any
// session is built.
func ParseFramework(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, fw := range Frameworks() {
		if n == fw {
			return fw, nil
		}
	}
	return "", fmt.Errorf("lancet: unknown framework %q (want %s)", name, strings.Join(Frameworks(), ", "))
}

// ParseModel resolves a user-facing model name — "gpt2-s", "gpt2-l",
// "vit-s", a common alias, or a config's full Name (so echoed service
// requests are re-submittable) — to its benchmark configuration; batch
// follows the GPT2SMoE convention (<= 0 selects the paper's default).
func ParseModel(name string, batch int) (ModelConfig, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "gpt2-s", "s", "small", "gpt2-s-moe":
		return GPT2SMoE(batch), nil
	case "gpt2-l", "l", "large", "gpt2-l-moe":
		return GPT2LMoE(batch), nil
	case "vit-s", "vit", "vit-s-moe":
		return ViTSMoE(batch), nil
	}
	return ModelConfig{}, fmt.Errorf("lancet: unknown model %q (want gpt2-s, gpt2-l or vit-s)", name)
}

// ParseGate resolves a user-facing gate name to its GateKind.
func ParseGate(name string) (GateKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "switch":
		return GateSwitch, nil
	case "top2":
		return GateTop2, nil
	case "bpr", "batch_prioritized":
		return GateBatchPriority, nil
	case "random":
		return GateRandom, nil
	case "hash":
		return GateHash, nil
	case "expert_choice", "ec":
		return GateExpertChoice, nil
	}
	return 0, fmt.Errorf("lancet: unknown gate %q (want switch, top2, bpr, random, hash or expert_choice)", name)
}

// GPT2SMoE returns the small benchmark model with the paper's per-GPU batch
// size for the given GPU type inferred later by NewSession; pass batch <= 0
// to use the paper's defaults.
func GPT2SMoE(batch int) ModelConfig {
	cfg := model.GPT2SMoE()
	if batch > 0 {
		cfg.BatchPerGPU = batch
	}
	return cfg
}

// GPT2LMoE returns the large benchmark model; see GPT2SMoE.
func GPT2LMoE(batch int) ModelConfig {
	cfg := model.GPT2LMoE()
	if batch > 0 {
		cfg.BatchPerGPU = batch
	}
	return cfg
}

// ViTSMoE returns a ViT-S/16-style vision MoE classifier with Batch
// Prioritized Routing — the workload family the BPR gate of the paper's
// Fig. 12 originates from (V-MoE).
func ViTSMoE(batch int) ModelConfig {
	cfg := model.ViTSMoE()
	if batch > 0 {
		cfg.BatchPerGPU = batch
	}
	return cfg
}

// NewCluster builds a simulated cluster of the given GPU type ("V100" for
// p3dn nodes, "A100" for p4de) with the given total GPU count.
func NewCluster(gpuType string, gpus int) (Cluster, error) {
	return hw.ClusterForGPUs(gpuType, gpus)
}

// ClassForGPU builds the NodeClass of `nodes` nodes of a known GPU type.
func ClassForGPU(gpuType string, nodes int) (NodeClass, error) {
	return hw.ClassForGPU(gpuType, nodes)
}

// NewHeteroCluster assembles a (possibly mixed-generation) cluster from an
// ordered class list (DESIGN.md §12). The first class is what a
// hetero-blind planner assumes fleet-wide; a list that collapses to a
// single class builds the plain uniform cluster.
func NewHeteroCluster(classes ...NodeClass) (Cluster, error) {
	return hw.ClusterFromClasses(classes)
}

// ParseClasses parses the CLI/serving-layer fleet syntax "4xA100+4xV100"
// (also comma-separated): each term is COUNTxTYPE with COUNT in nodes.
func ParseClasses(spec string) ([]NodeClass, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == '+' || r == ',' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("lancet: empty class spec %q (want e.g. 4xA100+4xV100)", spec)
	}
	classes := make([]NodeClass, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		count, gpuType, ok := strings.Cut(f, "x")
		n, err := strconv.Atoi(strings.TrimSpace(count))
		if !ok || err != nil || n <= 0 {
			return nil, fmt.Errorf("lancet: bad class term %q in %q (want COUNTxTYPE, e.g. 4xA100)", f, spec)
		}
		nc, err := hw.ClassForGPU(strings.TrimSpace(gpuType), n)
		if err != nil {
			return nil, err
		}
		classes = append(classes, nc)
	}
	return classes, nil
}

// MustCluster is NewCluster, panicking on error.
func MustCluster(gpuType string, gpus int) Cluster {
	c, err := NewCluster(gpuType, gpus)
	if err != nil {
		panic(err)
	}
	return c
}

// Options are Lancet's optimization hyper-parameters (paper Sec. 6). Zero
// values select the paper's auto-tuned settings: rho=8, gamma sized so five
// instruction groups fit between consecutive MoE layers, iota spanning one
// MoE layer.
type Options struct {
	// MaxPartitions is rho, the maximum partition count.
	MaxPartitions int
	// GroupUs is gamma, the DP instruction-group granularity.
	GroupUs float64
	// MaxRangeGroups is iota, the maximum pipeline length in groups.
	MaxRangeGroups int
	// DisableDWSchedule ablates the weight-gradient scheduling pass.
	DisableDWSchedule bool
	// DisablePartition ablates the operator partition pass.
	DisablePartition bool
	// DWFirstFit replaces the best-fit dW heuristic with first-fit
	// (ablation of the design choice).
	DWFirstFit bool
	// PrioritizeAllToAll additionally runs the Lina-style communication
	// priority pass (paper Sec. 8): gradient all-reduces are pushed behind
	// the backward all-to-alls they would otherwise head-of-line block.
	PrioritizeAllToAll bool
	// AssumeUniformRouting makes the partition DP plan as if the workload's
	// routed traffic were spread uniformly over device pairs: the planner
	// still knows the routed payload volume, but not its distribution —
	// the skew-blind planner ablation (DESIGN.md §10). Simulation still
	// replays the real skewed traffic, so comparing this plan against the
	// default quantifies exactly what knowing the traffic *shape* buys.
	AssumeUniformRouting bool
	// AssumeFlatTopology makes every optimization pass price communication
	// as if the cluster's fabric were flat — no racks, no oversubscribed
	// spine — while simulation still replays the real hierarchical topology
	// (DESIGN.md §11). The topology-blind planner ablation: comparing this
	// plan against the default quantifies what knowing the fabric shape
	// buys, exactly as AssumeUniformRouting does for traffic shape.
	AssumeFlatTopology bool
	// AssumeUniformHardware makes every optimization pass price the fleet
	// as if all nodes matched the cluster's base node spec — no slow
	// classes — while simulation still replays the real mixed-generation
	// fleet (DESIGN.md §12). The hetero-blind planner ablation, mirroring
	// AssumeFlatTopology: a plan priced for the fast nodes stalls on the
	// slow ones, and comparing it against the default quantifies what
	// knowing the fleet mix buys.
	AssumeUniformHardware bool
	// AssumeSoleTenancy makes every optimization pass price the spine as if
	// this job owned it alone — Topology.SpineShare read as 1 — while
	// simulation still replays the contended fabric (DESIGN.md §17). The
	// contention-blind planner ablation: a plan priced for the full spine
	// under-partitions the inter-rack all-to-alls it will actually wait on.
	AssumeSoleTenancy bool
	// PlanProfile, when non-nil, makes the partition DP price all-to-alls
	// against this routing profile instead of the session workload's own,
	// while simulation still replays the session's real traffic. It
	// generalizes AssumeUniformRouting (which is PlanProfile = the uniform
	// shape) to arbitrary stale shapes, and is what lets the drift
	// experiment replay today's traffic under a plan priced for
	// yesterday's (DESIGN.md §16). Takes precedence over
	// AssumeUniformRouting when both are set. The profile must be shaped
	// for the session's device count.
	PlanProfile *netsim.RoutingProfile
	// Hint seeds the partition DP with a neighboring configuration's
	// chosen pipelines — typically the adjacent sweep grid point's
	// Plan.Pipelines (DESIGN.md §14). A good hint cuts DP evaluations
	// sharply (the DP probes each hinted partition count's neighborhood
	// and skips the rest of the k sweep when it wins); a stale or
	// mismatched hint only costs its probes. Chosen plans are
	// byte-identical to a hint-free run either way, which is why the
	// serving layer's plan-store keys ignore it.
	Hint []PipelineHint
	// FixedPipelines replays a previous plan's chosen pipelines verbatim
	// instead of running the partition DP: each range keeps its partition
	// count (clamped to what the graph admits) and no partition decisions
	// are revisited. This is the degraded-replay half of a node-loss
	// what-if — "how does the stale plan behave on this fleet" — and takes
	// precedence over Hint (DESIGN.md §17).
	FixedPipelines []PipelineHint
	// LostNodes lists global node indices to drop in a node-loss what-if
	// (DESIGN.md §17). Session.Lancet ignores it — planning always targets
	// the intact fleet; Session.NodeLoss (and the serving layer's
	// what_if.lost_nodes field) consumes it to compare the stale plan's
	// degraded replay against a warm-started re-plan on the survivors.
	LostNodes []int
}

// PipelineHint is one chosen pipeline of a previous plan — the instruction
// range (input-graph program order, inclusive) and partition count the
// warm-started partition DP seeds itself from (DESIGN.md §14).
type PipelineHint struct {
	Start int `json:"start"`
	End   int `json:"end"`
	K     int `json:"k"`
}

// Session holds a model instance built for a cluster, ready to be planned
// by Lancet or by the baseline frameworks.
//
// A Session is safe for concurrent use once built: plans may be computed
// and simulated from multiple goroutines (the routing-profile cache is the
// only mutable state and it is mutex-guarded; the shared cost model is
// lock-striped). This is what lets cmd/lancet plan frameworks in parallel
// and lets the serving layer (cmd/lancet-serve) pool sessions across
// requests. WorkloadSkew must be set before the first plan or profile.
type Session struct {
	Config  ModelConfig
	Cluster Cluster
	Built   *model.Built

	// WorkloadSkew biases the routing-profile workload toward a few hot
	// experts (Zipf exponent; 0 = balanced). Skewed routing drops more
	// tokens and turns the hot expert's device into an ingress bottleneck,
	// which both planning and actual runs price with the link-level network
	// simulator (DESIGN.md §10).
	WorkloadSkew float64

	// WorkloadHotExpert biases the workload so roughly this fraction of all
	// tokens targets one hot expert (0 = balanced; exclusive with
	// WorkloadSkew, which takes precedence when both are set). It is the
	// single-hot-spot companion to WorkloadSkew's Zipf tail.
	WorkloadHotExpert float64

	costRAF *cost.Model

	mu        sync.Mutex              // guards profiles, costBlind and workloadProfile; plans of one session may run concurrently
	profiles  map[int]*routingProfile // cache: micro-batch count -> profile
	costBlind map[string]*cost.Model  // lazy: planner-blindness ablation models (flat topology, uniform hardware)
	// workloadProfile, when set via SetWorkloadProfile, replaces the
	// parametric gate-proxy workload entirely: planning prices and
	// simulation replays this streamed traffic shape (DESIGN.md §16).
	workloadProfile *netsim.RoutingProfile
}

// routingProfile is what one functional gate run over a proxy batch tells
// the simulator about a configuration's dispatch traffic.
type routingProfile struct {
	devices int
	tokens  int     // proxy tokens per device
	routed  int     // total routed slots
	dropped int     // total dropped slots
	counts  [][]int // aggregate send matrix [src][dst] in tokens
	// shares[m] is the fraction of the padded per-device payload
	// micro-batch m of the split actually moves.
	shares []float64
	// hotExpertShare is the fraction of routed tokens on the single most
	// popular expert (drives FasterMoE-style shadowing).
	hotExpertShare float64
	// net is the counts histogram packaged for the link-level pricing path
	// (cost.AllToAllSkewedUs, the partition DP, the simulator replay).
	net *netsim.RoutingProfile
}

// NewSession builds the training graph for cfg on the cluster. A
// non-positive BatchPerGPU selects the paper's batch size for the GPU type
// (a mixed fleet's base class — the name before the first "+" — so the CLI
// and the serving layer resolve the same default).
func NewSession(cfg ModelConfig, cluster Cluster) (*Session, error) {
	if cfg.BatchPerGPU <= 0 {
		base, _, _ := strings.Cut(cluster.Name, "+")
		cfg.BatchPerGPU = cfg.PaperBatchSize(base)
	}
	b, err := model.Build(cfg, cluster)
	if err != nil {
		return nil, err
	}
	return &Session{
		Config:   cfg,
		Cluster:  cluster,
		Built:    b,
		costRAF:  cost.NewModel(cluster),
		profiles: make(map[int]*routingProfile),
	}, nil
}

// Plan is an executable schedule: a rewritten graph plus the cost model it
// should run under. A Plan is immutable after planning and safe to share
// across goroutines; Simulate, PredictUs and ChromeTrace may be called
// concurrently.
type Plan struct {
	Name        string
	Framework   string
	Graph       *ir.Graph
	TutelDegree int
	// OOM marks configurations whose memory footprint exceeds the device
	// (rendered as the red crosses of paper Fig. 11).
	OOM bool
	// OptimizeTime is the wall-clock time the optimization passes took
	// (paper Fig. 15).
	OptimizeTime time.Duration
	// DWOverlapUs is the predicted all-to-all time covered by scheduled
	// weight-gradient computation.
	DWOverlapUs float64
	// PipelineRanges is the number of partition pipelines chosen by the
	// DP.
	PipelineRanges int
	// PipelineKs lists the chosen per-pipeline partition counts in program
	// order — the plan shape that shifts under skewed routing.
	PipelineKs []int
	// DPEvaluations counts P(i,n,k) evaluations (optimization effort) —
	// the quantity a warm-start hint reduces (DESIGN.md §14).
	DPEvaluations int
	// Pipelines lists the chosen pipelines (instruction range + partition
	// count) — the warm-start hint a neighboring configuration seeds its
	// partition DP from via Options.Hint (DESIGN.md §14).
	Pipelines []PipelineHint
	// RhoUsed is the maximum-partition limit actually used after the OOM
	// fallback (paper Sec. 7: rho=8, reduced to 4 then 2 when partition
	// staging would exceed device memory).
	RhoUsed int

	sess     *Session
	costs    *cost.Model
	spec     baselines.Spec
	overlaps bool // uses Lancet's irregular all-to-all implementation

	// Irregular-override maps are derived once per (plan, streamed-traffic
	// fingerprint): the graph is immutable after planning, so the overrides
	// only change when SetWorkloadProfile swaps the session's traffic.
	// Between swaps they are shared by every PredictUs / Simulate call, so
	// concurrent simulations of one plan don't re-walk the routing profiles
	// (DESIGN.md §13); after a swap the next simulation re-derives them, so
	// a stale plan replays the *new* traffic (DESIGN.md §16).
	ovMu    sync.Mutex
	ovDone  bool
	ovFP    uint64
	ovBytes map[int]int64
	ovDur   map[int]float64
	ovErr   error
}

// overrides resolves the plan's irregular all-to-all overrides, computing
// them on first use and again whenever the session's streamed workload
// profile has changed since they were derived.
func (p *Plan) overrides() (map[int]int64, map[int]float64, error) {
	fp := uint64(0)
	if wp := p.sess.StreamedProfile(); wp != nil {
		fp = wp.Fingerprint()
	}
	p.ovMu.Lock()
	defer p.ovMu.Unlock()
	if !p.ovDone || p.ovFP != fp {
		p.ovBytes, p.ovDur, p.ovErr = p.sess.irregularOverrides(p.Graph)
		p.ovDone, p.ovFP = true, fp
	}
	return p.ovBytes, p.ovDur, p.ovErr
}

// CostStats is a snapshot of a cost model's memoization counters,
// re-exported from the internal cost package for observability surfaces
// like lancet-serve's /v1/stats.
type CostStats = cost.CacheStats

// CostStats reports the memoization counters of the session's shared RAF
// cost model — the model Lancet plans, predictions and the partition DP
// price against. Baseline plans build private cost models whose counters
// are not included here.
func (s *Session) CostStats() CostStats { return s.costRAF.Stats() }

// skewedWorkload reports whether the session's routing deviates from the
// balanced workload — via the parametric skew knobs or a streamed profile.
func (s *Session) skewedWorkload() bool {
	return s.WorkloadSkew > 0 || s.WorkloadHotExpert > 0 || s.StreamedProfile() != nil
}

// StreamedProfile returns the streamed workload profile installed by
// SetWorkloadProfile, or nil when the session routes its parametric
// workload.
func (s *Session) StreamedProfile() *netsim.RoutingProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workloadProfile
}

// SetWorkloadProfile installs a streamed routing profile as the session's
// workload (DESIGN.md §16): planning prices against p's traffic shape and
// simulation replays it, replacing the parametric gate proxy entirely. The
// drift loop calls this each time a session's decayed traffic snapshot
// supersedes the profile the live plan was built from; passing nil reverts
// to the parametric workload. The superseded fingerprint's memoized prices
// are dropped from the session's cost models — a long-lived serving
// session must not accumulate one interpolation table per drift step — so
// plans computed before the swap replay the *new* traffic on their next
// simulation, which is exactly the stale-plan-under-fresh-traffic replay
// the drift experiment measures.
func (s *Session) SetWorkloadProfile(p *netsim.RoutingProfile) error {
	if err := s.costRAF.ValidateProfile(p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.workloadProfile; old != nil && (p == nil || p.Fingerprint() != old.Fingerprint()) {
		s.costRAF.InvalidateProfile(old.Fingerprint())
		for _, m := range s.costBlind {
			m.InvalidateProfile(old.Fingerprint())
		}
	}
	s.workloadProfile = p
	// Cached per-k dispatch statistics describe the superseded workload.
	s.profiles = make(map[int]*routingProfile)
	return nil
}

// RoutingProfile returns the per-pair traffic histogram of the session's
// workload, produced by functionally routing a proxy batch through the
// configured gate (DESIGN.md §10). Balanced workloads return nil: every
// consumer treats nil as "price with the closed-form uniform model". For a
// streamed workload the histogram is the *delivered* traffic — the
// installed profile after expert capacity has clipped over-subscribed
// destinations — which is the shape planning prices and simulation
// replays.
func (s *Session) RoutingProfile() (*netsim.RoutingProfile, error) {
	prof, _, err := s.routingContext()
	return prof, err
}

// routingContext returns the workload's routing profile plus the fraction
// of the padded all-to-all payload it actually routes — the two inputs the
// partition DP needs to price all-to-alls the way the simulator will
// replay them. Balanced workloads return (nil, 1).
func (s *Session) routingContext() (*netsim.RoutingProfile, float64, error) {
	if !s.skewedWorkload() {
		return nil, 1, nil
	}
	p, err := s.profile(1)
	if err != nil {
		return nil, 0, err
	}
	frac := 1.0
	if len(p.shares) > 0 && p.shares[0] > 0 && p.shares[0] < 1 {
		frac = p.shares[0]
	}
	return p.net, frac, nil
}

// blindCost returns the cost model a partially blind planner prices with:
// the session's cluster stripped of its topology (flat fabric), its class
// mix (uniform hardware), its spine contention (sole tenancy), or any
// combination. Models are built lazily once per blindness combination; when
// a requested blindness changes nothing about the cluster, the shared model
// is returned. Flat subsumes sole: stripping the whole topology also strips
// its tenant share.
func (s *Session) blindCost(flat, uniform, sole bool) *cost.Model {
	flat = flat && !s.Cluster.FlatTopology()
	uniform = uniform && s.Cluster.Heterogeneous()
	sole = sole && !flat && s.Cluster.Contended()
	if !flat && !uniform && !sole {
		return s.costRAF
	}
	cl := s.Cluster
	key := ""
	if flat {
		cl = cl.Flat()
		key = "flat"
	}
	if uniform {
		cl = cl.Uniform()
		key += "+uniform"
	}
	if sole {
		cl = cl.SoleTenant()
		key += "+sole"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.costBlind == nil {
		s.costBlind = make(map[string]*cost.Model)
	}
	if m, ok := s.costBlind[key]; ok {
		return m
	}
	m := cost.NewModel(cl)
	s.costBlind[key] = m
	return m
}

// Lancet runs both optimization passes and returns the optimized plan.
func (s *Session) Lancet(opts Options) (*Plan, error) {
	start := time.Now()
	g := s.Built.Graph
	plan := &Plan{
		Name: "Lancet", Framework: FrameworkLancet,
		sess: s, costs: s.costRAF,
		spec:     baselines.Spec{Name: "Lancet", ComputeScale: 1.0, Memory: model.MemoryCompiled},
		overlaps: true,
	}

	// The passes price against planCost; simulation (plan.costs) always
	// charges the cluster's real topology, fleet mix and tenant share. The
	// two differ only under the AssumeFlatTopology / AssumeUniformHardware /
	// AssumeSoleTenancy ablations.
	planCost := s.blindCost(opts.AssumeFlatTopology, opts.AssumeUniformHardware, opts.AssumeSoleTenancy)

	if opts.PrioritizeAllToAll {
		res, err := commprio.Run(g)
		if err != nil {
			return nil, fmt.Errorf("lancet: comm priority pass: %w", err)
		}
		g = res.Graph
	}

	if !opts.DisableDWSchedule {
		strat := dwsched.BestFit
		if opts.DWFirstFit {
			strat = dwsched.FirstFit
		}
		res, err := dwsched.Run(g, planCost, dwsched.Options{Strategy: strat})
		if err != nil {
			return nil, fmt.Errorf("lancet: dW schedule pass: %w", err)
		}
		g = res.Graph
		plan.DWOverlapUs = res.OverlappedUs
	}

	if !opts.DisablePartition {
		popts := partition.Options{
			MaxPartitions:    opts.MaxPartitions,
			GroupUs:          opts.GroupUs,
			MaxRangeGroups:   opts.MaxRangeGroups,
			GatePartialBatch: s.Config.Gate.SupportsPartialBatch(),
		}
		if len(opts.Hint) > 0 && len(opts.FixedPipelines) == 0 {
			popts.Hint = make([]partition.Range, len(opts.Hint))
			for i, h := range opts.Hint {
				popts.Hint[i] = partition.Range{Start: h.Start, End: h.End, K: h.K}
			}
		}
		var fixed []partition.Range
		if len(opts.FixedPipelines) > 0 {
			fixed = make([]partition.Range, len(opts.FixedPipelines))
			for i, h := range opts.FixedPipelines {
				fixed[i] = partition.Range{Start: h.Start, End: h.End, K: h.K}
			}
		}
		prof, frac, err := s.routingContext()
		if err != nil {
			return nil, fmt.Errorf("lancet: routing profile: %w", err)
		}
		if opts.AssumeUniformRouting && prof != nil {
			// Keep the routed volume, erase the traffic shape.
			prof = netsim.UniformProfile(s.Cluster.TotalGPUs())
		}
		if opts.PlanProfile != nil {
			if err := planCost.ValidateProfile(opts.PlanProfile); err != nil {
				return nil, fmt.Errorf("lancet: plan profile: %w", err)
			}
			prof = opts.PlanProfile
		}
		popts.Profile, popts.PayloadFraction = prof, frac
		if popts.GroupUs == 0 {
			popts.GroupUs = s.autoGroupUs(planCost)
		}
		if popts.MaxRangeGroups == 0 {
			popts.MaxRangeGroups = 7 // ~ five groups between MoE layers plus the core
		}
		if popts.MaxPartitions == 0 {
			popts.MaxPartitions = 8
		}
		// Paper Sec. 7: rho starts at 8 and halves (4, then 2) when the
		// partition staging buffers would not fit in device memory. A fixed
		// replay follows the same fallback: its Ks are clamped by the
		// shrinking rho until the staging fits.
		for {
			var res *partition.Result
			var err error
			if fixed != nil {
				res, err = partition.Replay(g, planCost, popts, fixed)
			} else {
				res, err = partition.Run(g, planCost, popts)
			}
			if err != nil {
				return nil, fmt.Errorf("lancet: partition pass: %w", err)
			}
			if popts.MaxPartitions <= 2 || s.partitionFits(res) {
				g = res.Graph
				plan.PipelineRanges = len(res.Ranges)
				plan.PipelineKs = plan.PipelineKs[:0]
				plan.Pipelines = plan.Pipelines[:0]
				for _, r := range res.Ranges {
					plan.PipelineKs = append(plan.PipelineKs, r.K)
					plan.Pipelines = append(plan.Pipelines, PipelineHint{Start: r.Start, End: r.End, K: r.K})
				}
				plan.DPEvaluations += res.Evaluations
				plan.RhoUsed = popts.MaxPartitions
				break
			}
			plan.DPEvaluations += res.Evaluations
			popts.MaxPartitions /= 2
		}
	}

	plan.Graph = g
	plan.OptimizeTime = time.Since(start)
	plan.OOM = !s.Built.FitsMemory(plan.spec.Memory)
	return plan, nil
}

// partitionFits reports whether the chosen pipelines' staging buffers
// (each micro-partition double-buffers its slice of the dispatch payload)
// fit next to the model's training footprint.
func (s *Session) partitionFits(res *partition.Result) bool {
	var staging int64
	for _, r := range res.Ranges {
		staging += 2 * int64(r.K) * s.Built.A2ABytes
	}
	return float64(s.Built.MemoryBytes(model.MemoryCompiled)+staging) <= s.Cluster.MemBytes()
}

// autoGroupUs sizes gamma so roughly five groups fit between consecutive
// MoE layers (paper Sec. 7, hyper-parameters), priced with the planner's
// cost model so a topology-blind planner also groups blind.
func (s *Session) autoGroupUs(cm *cost.Model) float64 {
	fwd := 0.0
	for _, in := range s.Built.Graph.Instrs {
		if in.Phase != ir.Forward {
			break
		}
		fwd += cm.PredictInstr(in)
	}
	n := s.Config.NumMoELayers()
	if n == 0 {
		n = 1
	}
	return fwd / float64(5*n)
}

// Baseline plans the model under one of the comparison frameworks:
// FrameworkDeepSpeed, FrameworkRAF, FrameworkTutel or FrameworkFasterMoE.
// Passing FrameworkLancet delegates to Lancet with default Options.
func (s *Session) Baseline(framework string) (*Plan, error) {
	var spec baselines.Spec
	switch framework {
	case FrameworkDeepSpeed:
		spec = baselines.DeepSpeed
	case FrameworkRAF:
		spec = baselines.RAF
	case FrameworkTutel:
		spec = baselines.Tutel
	case FrameworkFasterMoE:
		spec = baselines.FasterMoE
	case FrameworkLancet:
		return s.Lancet(Options{})
	default:
		return nil, fmt.Errorf("lancet: unknown framework %q", framework)
	}
	cm := cost.NewModel(s.Cluster)
	cm.ComputeScale = spec.ComputeScale
	plan := &Plan{
		Name: spec.Name, Framework: framework,
		sess: s, costs: cm, spec: spec,
	}
	start := time.Now()
	switch framework {
	case FrameworkTutel:
		ex := &sim.Executor{Cost: cm, Predict: true}
		g, degree, err := baselines.BestTutelPlan(s.Built, cm, func(g *ir.Graph) (float64, error) {
			tl, err := ex.Run(g, g.DefaultSchedule())
			if err != nil {
				return 0, err
			}
			return tl.TotalUs, nil
		})
		if err != nil {
			return nil, err
		}
		plan.Graph, plan.TutelDegree = g, degree
	case FrameworkFasterMoE:
		prof, err := s.profile(1)
		if err != nil {
			return nil, err
		}
		g, err := baselines.FasterMoEPlan(s.Built, cm, prof.hotExpertShare)
		if err != nil {
			return nil, err
		}
		plan.Graph = g
	default:
		plan.Graph = baselines.SequentialPlan(s.Built)
	}
	plan.OptimizeTime = time.Since(start)
	plan.OOM = spec.OOMs(s.Built)
	return plan, nil
}

// PredictUs returns the optimizer-visible iteration time estimate (cached
// profiles, interpolated comm tables, C/n static-shape approximation) —
// the "predicted time" axis of paper Fig. 14. For Lancet plans the
// expected irregular payloads, known from the compile-time profiling
// batch, feed the same interpolated table.
func (p *Plan) PredictUs() (float64, error) {
	ex := &sim.Executor{Cost: p.costs, Predict: true}
	if p.overlaps {
		bytesOv, _, err := p.overrides()
		if err != nil {
			return 0, err
		}
		ex.A2ABytesOverride = bytesOv
	}
	tl, err := ex.Run(p.Graph, p.Graph.DefaultSchedule())
	if err != nil {
		return 0, err
	}
	return tl.TotalUs, nil
}

// Report is the outcome of one simulated training iteration.
type Report struct {
	IterationMs float64
	// Decomposition (paper Figs. 2 and 13).
	NonOverlappedCommMs    float64
	NonOverlappedComputeMs float64
	OverlapMs              float64
	// Category views.
	AllToAllMs         float64
	NonOverlappedA2AMs float64
	ExpertMs           float64
	CommMs             float64
	ComputeMs          float64
	// IrregularA2AMs is the all-to-all time executed with irregular
	// (routing-derived) durations — the replayed skew traffic for hot
	// workloads, the unpadded payload for balanced ones. Zero for padded
	// baselines.
	IrregularA2AMs float64
	// A2ABoundNVLinkMs, A2ABoundNICMs and A2ABoundSpineMs decompose
	// AllToAllMs by the topology tier bounding each exchange (DESIGN.md
	// §11): on a flat fabric the spine bucket is zero; under an
	// oversubscribed spine the all-to-all time migrates into it.
	A2ABoundNVLinkMs float64
	A2ABoundNICMs    float64
	A2ABoundSpineMs  float64
	// StragglerClassMs attributes, per node class, the compute time the
	// iteration spent waiting on that class beyond what the fleet's
	// fastest class would have taken (DESIGN.md §12) — the
	// heterogeneity penalty a uniform-planned replay pays. Nil on uniform
	// clusters.
	StragglerClassMs map[string]float64
	// OOM propagates the plan's memory verdict.
	OOM bool
}

// Simulate executes the plan for one iteration with execution jitter and —
// for Lancet plans — the irregular all-to-all payloads derived from
// functionally routing a token batch (the padded buffers baselines send
// are replaced by what the gate actually dispatched).
func (p *Plan) Simulate(seed int64) (*Report, error) {
	ex := &sim.Executor{Cost: p.costs, JitterPct: 0.02, SystematicPct: 0.04, Seed: seed}
	if p.overlaps {
		bytesOv, durOv, err := p.overrides()
		if err != nil {
			return nil, err
		}
		ex.A2ABytesOverride = bytesOv
		ex.A2ADurOverrideUs = durOv
	}
	tl, err := ex.Run(p.Graph, p.Graph.DefaultSchedule())
	if err != nil {
		return nil, err
	}
	var straggler map[string]float64
	if len(tl.StragglerClassUs) > 0 {
		straggler = make(map[string]float64, len(tl.StragglerClassUs))
		for class, us := range tl.StragglerClassUs {
			straggler[class] = us / 1000
		}
	}
	return &Report{
		IterationMs:            tl.TotalUs / 1000,
		NonOverlappedCommMs:    tl.NonOverlappedCommUs / 1000,
		NonOverlappedComputeMs: tl.NonOverlappedComputeUs / 1000,
		OverlapMs:              tl.OverlapUs / 1000,
		AllToAllMs:             tl.AllToAllUs / 1000,
		NonOverlappedA2AMs:     tl.NonOverlappedA2AUs / 1000,
		ExpertMs:               tl.ExpertUs / 1000,
		CommMs:                 tl.CommBusyUs / 1000,
		ComputeMs:              tl.ComputeBusyUs / 1000,
		IrregularA2AMs:         tl.IrregularA2AUs / 1000,
		A2ABoundNVLinkMs:       tl.A2ATierUs[hw.TierNVLink] / 1000,
		A2ABoundNICMs:          tl.A2ATierUs[hw.TierNIC] / 1000,
		A2ABoundSpineMs:        tl.A2ATierUs[hw.TierSpine] / 1000,
		StragglerClassMs:       straggler,
		OOM:                    p.OOM,
	}, nil
}

// MustSimulate is Simulate, panicking on error.
func (p *Plan) MustSimulate(seed int64) *Report {
	r, err := p.Simulate(seed)
	if err != nil {
		panic(err)
	}
	return r
}

// ChromeTrace renders one simulated iteration as Chrome trace-event JSON.
func (p *Plan) ChromeTrace(seed int64) ([]byte, error) {
	ex := &sim.Executor{Cost: p.costs, JitterPct: 0.02, Seed: seed}
	tl, err := ex.Run(p.Graph, p.Graph.DefaultSchedule())
	if err != nil {
		return nil, err
	}
	return trace.Export(p.Graph, tl)
}

// irregularOverrides derives per-all-to-all actual payloads from a
// functional routing run: micro-partition m of a k-way split carries the
// tokens its micro-batch actually routed (paper Fig. 5c), and even
// unpartitioned all-to-alls shed their zero padding (Fig. 10). Balanced
// workloads are priced by payload; skewed workloads additionally price the
// routing profile's transfer matrix on the link-level network simulator —
// through the cost model's memoized AllToAllSkewedUs, so repeated plans and
// simulations of one session pay each distinct micro-payload once — where
// the hot expert's device bounds completion (DESIGN.md §10).
func (s *Session) irregularOverrides(g *ir.Graph) (bytesOv map[int]int64, durOv map[int]float64, err error) {
	bytesOv = make(map[int]int64)
	if s.skewedWorkload() {
		durOv = make(map[int]float64)
	}
	perTokenBytes := int64(s.Config.Hidden) * s.Config.DType.Size()
	var sizeExchange float64
	var sizeExchangeDone bool
	for _, in := range g.Instrs {
		if in.Op != ir.OpAllToAll {
			continue
		}
		k := in.NumParts
		if k < 1 {
			k = 1
		}
		p, err := s.profile(k)
		if err != nil {
			return nil, nil, err
		}
		m := in.PartIdx
		if m >= len(p.shares) {
			m = len(p.shares) - 1
		}
		bytesOv[in.ID] = int64(p.shares[m] * float64(s.Built.A2ABytes))
		if durOv != nil && p.net != nil && p.devices == s.Cluster.TotalGPUs() {
			microFrac := 0.0
			if total := sumf(p.shares); total > 0 {
				microFrac = p.shares[m] / total
			}
			// The micro a2a moves the profile's traffic shape at a mean
			// per-device payload of this micro-batch's routed share, scaled
			// from proxy tokens to the real batch.
			routedTokens := int64(0)
			for _, row := range p.counts {
				for _, c := range row {
					routedTokens += int64(c)
				}
			}
			scale := float64(s.Config.TokensPerGPU()) / float64(p.tokens) * microFrac
			meanBytes := int64(scale * float64(routedTokens) * float64(perTokenBytes) / float64(p.devices))
			t := s.costRAF.AllToAllSkewedUs(meanBytes, p.net)
			// Capacity caps every (source, expert) pair at C tokens, so an
			// irregular exchange can never exceed the padded one on any
			// link; cap at the padded cost to keep the two pricing models
			// consistent.
			padded := s.costRAF.ActualInstr(in)
			if t > padded {
				t = padded
			}
			if !sizeExchangeDone {
				// The size-exchange phase replays a uniform 4-byte-per-pair
				// matrix; the cost model memoizes the replay on its persistent
				// network simulator (p.devices == TotalGPUs holds here, per
				// the guard above).
				sizeExchange = s.costRAF.UniformReplayUs(int64(p.devices) * 4)
				sizeExchangeDone = true
			}
			durOv[in.ID] = t + sizeExchange
		}
	}
	return bytesOv, durOv, nil
}

func sumf(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// proxyKey identifies one routing-proxy computation. The proxy is a pure
// function of these fields (layer and input seeds, proxy token count and
// hidden width are fixed constants), so its result can be shared across
// sessions process-wide.
type proxyKey struct {
	devices, expertsPerGPU, k int
	gate                      model.GateKind
	capacityFactor, skew, hot float64
}

// proxyCache memoizes routing proxies across sessions (DESIGN.md §13): a
// cold plan for a (cluster, gate, workload) shape the process has already
// planned — the common case for pooled serving and the experiment suite —
// skips the functional gate run entirely. Keys are config shapes, so the
// map stays small for any realistic process lifetime.
var proxyCache sync.Map // proxyKey -> *routingProfile

// profile runs the functional gate on a scaled-down token batch (the
// routing distribution depends on token and expert counts, not hidden
// width) split into k micro-batches, and caches the dispatch statistics.
func (s *Session) profile(k int) (*routingProfile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.profiles[k]; ok {
		return p, nil
	}
	if s.workloadProfile != nil {
		p := syntheticProfile(s.workloadProfile, k, s.Config.CapacityFactor)
		s.profiles[k] = p
		return p, nil
	}
	devices := s.Cluster.TotalGPUs()
	// workloadProfile is nil here, so the direct knob check is the full
	// skewedWorkload predicate (which would re-lock mu).
	if devices > 16 && s.WorkloadSkew <= 0 && s.WorkloadHotExpert <= 0 {
		devices = 16 // balanced routing fractions saturate; keep the proxy cheap
	}
	key := proxyKey{
		devices: devices, expertsPerGPU: s.Config.ExpertsPerGPU, k: k,
		gate:           s.Config.Gate,
		capacityFactor: s.Config.CapacityFactor,
		skew:           s.WorkloadSkew, hot: s.WorkloadHotExpert,
	}
	if c, ok := proxyCache.Load(key); ok {
		p := c.(*routingProfile) // shared and never mutated after publication
		s.profiles[k] = p
		return p, nil
	}
	tokens := 256
	experts := devices * s.Config.ExpertsPerGPU
	capacity := int(float64(tokens*s.Config.Gate.TopK()) / float64(experts) * s.Config.CapacityFactor)
	if capacity < 1 {
		capacity = 1
	}
	layer, err := moe.NewLayer(moe.Config{
		Devices: devices, ExpertsPerDevice: s.Config.ExpertsPerGPU,
		Capacity: capacity, Hidden: 16, FFN: 16,
	}, 12345)
	if err != nil {
		return nil, err
	}
	var inputs []*tensor.Tensor
	switch {
	case s.WorkloadSkew > 0:
		inputs = moe.SkewedInputs(layer, tokens, s.WorkloadSkew, 777)
	case s.WorkloadHotExpert > 0:
		inputs = moe.HotExpertInputs(layer, tokens, s.WorkloadHotExpert, 777)
	default:
		inputs = makeProxyInputs(devices, tokens, 16)
	}
	_, stats := layer.RouteOnly(inputs, s.gateImpl(), k)

	p := &routingProfile{
		devices: devices, tokens: tokens,
		routed: stats.Routed, dropped: stats.Dropped,
		counts:         stats.SendTokens,
		hotExpertShare: stats.HottestExpertShare(),
	}
	// Direct knob check again: skewedWorkload would re-lock mu, and the
	// streamed-profile leg returned earlier in this function.
	if s.WorkloadSkew > 0 || s.WorkloadHotExpert > 0 {
		np, err := netsim.ProfileFromCounts(stats.SendTokens)
		if err != nil {
			return nil, fmt.Errorf("lancet: routing profile from gate counts: %w", err)
		}
		p.net = np
	}
	padded := float64(stats.PaddedTokensPerDevice)
	for _, row := range stats.MicroSendTokens {
		sum := 0.0
		for _, c := range row {
			sum += float64(c)
		}
		p.shares = append(p.shares, sum/float64(len(row))/padded)
	}
	proxyCache.Store(key, p)
	s.profiles[k] = p
	return p, nil
}

// syntheticProfile packages a streamed routing profile as the per-k
// dispatch statistics the planner and simulator consume. The streamed
// histogram carries no micro-batch structure, so a k-way split is modeled
// as k equal shares of the delivered payload each moving the same traffic
// shape; tokens is the histogram's per-device mean, which makes the replay
// scale in irregularOverrides resolve to the session's full per-GPU token
// budget (capped at the padded cost, as always).
//
// Capacity applies to streamed traffic exactly as the functional gate
// applies it to proxied batches: each destination absorbs at most its
// uniform share of the padded budget (capacityFactor times the balanced
// split), and tokens routed beyond that are dropped. Over-capacity
// destinations have their columns scaled down to the cap, so the delivered
// shape, the routed volume and the padded-payload shares all mirror what
// RouteOnly reports for a skewed batch — which is what lets the partition
// DP price a drifted profile below the padded ceiling and choose a
// different plan for it.
func syntheticProfile(wp *netsim.RoutingProfile, k int, capacityFactor float64) *routingProfile {
	if capacityFactor <= 0 {
		capacityFactor = 1
	}
	counts64 := wp.Counts()
	devices := wp.Devices()
	offered := int64(0)
	ingress := make([]float64, devices)
	for _, row := range counts64 {
		for j, v := range row {
			offered += v
			ingress[j] += float64(v)
		}
	}
	capPer := float64(offered) * capacityFactor / float64(devices)
	counts := make([][]int, devices)
	routed := int64(0)
	capped := false
	for i, row := range counts64 {
		counts[i] = make([]int, devices)
		for j, v := range row {
			d := float64(v)
			if ingress[j] > capPer {
				d = d * capPer / ingress[j]
				capped = true
			}
			c := int(math.Round(d))
			counts[i][j] = c
			routed += int64(c)
		}
	}
	net := wp
	if capped {
		if np, err := netsim.ProfileFromCounts(counts); err == nil {
			net = np
		}
	}
	tokens := int(offered) / devices
	if tokens < 1 {
		tokens = 1
	}
	// The padded exchange carries capacityFactor times the offered volume;
	// shares are the delivered fraction of it, split evenly across the k
	// micro-batches.
	share := float64(routed) / (float64(offered) * capacityFactor)
	shares := make([]float64, k)
	for i := range shares {
		shares[i] = share / float64(k)
	}
	return &routingProfile{
		devices:        devices,
		tokens:         tokens,
		routed:         int(routed),
		dropped:        int(offered - routed),
		counts:         counts,
		shares:         shares,
		hotExpertShare: net.MaxIngressShare(),
		net:            net,
	}
}

// makeProxyInputs builds deterministic token batches for the routing proxy.
func makeProxyInputs(devices, tokens, hidden int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(777))
	xs := make([]*tensor.Tensor, devices)
	for d := range xs {
		xs[d] = tensor.Randn(rng, 1, tokens, hidden)
	}
	return xs
}

func (s *Session) gateImpl() moe.Gate {
	switch s.Config.Gate {
	case model.GateTop2:
		return moe.Top2Gate{}
	case model.GateBatchPriority:
		return moe.BatchPrioritizedGate{}
	case model.GateRandom:
		return moe.RandomGate{Seed: 99}
	case model.GateHash:
		return moe.HashGate{}
	case model.GateExpertChoice:
		return moe.ExpertChoiceGate{}
	default:
		return moe.SwitchGate{}
	}
}

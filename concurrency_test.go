package lancet_test

import (
	"sync"
	"testing"

	"lancet"
)

// TestConcurrentPlansShareSession is the regression test for the parallel
// CLI path: all frameworks plan and simulate against one Session — and so
// share its built graph and routing-profile cache — concurrently. Results
// must match a serial run exactly (and the lazy graph-adjacency build must
// not race; run with -race).
func TestConcurrentPlansShareSession(t *testing.T) {
	frameworks := []string{
		lancet.FrameworkDeepSpeed, lancet.FrameworkRAF,
		lancet.FrameworkTutel, lancet.FrameworkLancet,
	}
	plan := func(sess *lancet.Session, fw string) float64 {
		t.Helper()
		var p *lancet.Plan
		var err error
		if fw == lancet.FrameworkLancet {
			p, err = sess.Lancet(lancet.Options{})
		} else {
			p, err = sess.Baseline(fw)
		}
		if err != nil {
			t.Errorf("%s: %v", fw, err)
			return 0
		}
		return p.MustSimulate(1).IterationMs
	}

	serialSess, err := lancet.NewSession(lancet.GPT2SMoE(0), lancet.MustCluster("V100", 8))
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]float64, len(frameworks))
	for i, fw := range frameworks {
		serial[i] = plan(serialSess, fw)
	}

	parSess, err := lancet.NewSession(lancet.GPT2SMoE(0), lancet.MustCluster("V100", 8))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(frameworks))
	var wg sync.WaitGroup
	for i, fw := range frameworks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = plan(parSess, fw)
		}()
	}
	wg.Wait()

	for i, fw := range frameworks {
		if got[i] != serial[i] {
			t.Errorf("%s: concurrent iteration %.4f ms != serial %.4f ms", fw, got[i], serial[i])
		}
	}
}

package lancet_test

// One benchmark per table/figure of the paper's evaluation (Sec. 7). Each
// regenerates the corresponding experiment on a reduced (16-GPU) grid; the
// full grids are produced by `go run ./cmd/lancet-bench`. Additional
// micro-benchmarks cover the optimization passes themselves and the
// ablations called out in DESIGN.md §8.

import (
	"testing"

	"lancet"
	"lancet/internal/experiments"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig02Breakdown regenerates Fig. 2 (Orig/Curr/Opt breakdown).
func BenchmarkFig02Breakdown(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig06PartitionRange regenerates Fig. 6 (partition-range sweep
// with the DP solution).
func BenchmarkFig06PartitionRange(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig11Throughput regenerates Fig. 11 (Switch-gate throughput
// grid).
func BenchmarkFig11Throughput(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12ThroughputBPR regenerates Fig. 12 (Batch-Prioritized-gate
// throughput grid).
func BenchmarkFig12ThroughputBPR(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13Decomposition regenerates Fig. 13 (iteration
// decomposition).
func BenchmarkFig13Decomposition(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14CostModel regenerates Fig. 14 (cost-model accuracy).
func BenchmarkFig14CostModel(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15OptimizationTime regenerates Fig. 15 (optimization time).
func BenchmarkFig15OptimizationTime(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16Ablation regenerates Fig. 16 (per-pass ablation).
func BenchmarkFig16Ablation(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkEquivalenceCheck regenerates the Sec. 2.3 routing-equivalence
// table.
func BenchmarkEquivalenceCheck(b *testing.B) { benchExperiment(b, "equiv") }

// BenchmarkIrregularA2ASavings regenerates the padded-vs-irregular payload
// table backing Sec. 7.1's communication-time observation.
func BenchmarkIrregularA2ASavings(b *testing.B) { benchExperiment(b, "a2a-padding") }

// ---------------------------------------------------------------------------
// End-to-end pipeline micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkLancetOptimize measures both optimization passes end to end on
// GPT2-S-MoE/16xV100 (the quantity plotted in Fig. 15).
func BenchmarkLancetOptimize(b *testing.B) {
	sess, err := lancet.NewSession(lancet.GPT2SMoE(0), lancet.MustCluster("V100", 16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Lancet(lancet.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCold measures a full cold plan — session construction,
// skewed routing profile, both optimization passes, and the final simulated
// timeline — with nothing warmed between iterations except the
// process-wide state a pooled server also shares: the scratch arenas and
// the routing-proxy memo. This is the cost of one /v1/plan request on a
// fresh session, the end-to-end quantity the arena refactor targets
// (DESIGN.md §13); perf_floor.txt ratchets it.
func BenchmarkPlanCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, err := lancet.NewSession(lancet.GPT2SMoE(0), lancet.MustCluster("V100", 16))
		if err != nil {
			b.Fatal(err)
		}
		sess.WorkloadSkew = 1.2
		if _, err := sess.Lancet(lancet.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateIteration measures one simulated training iteration of
// the optimized plan.
func BenchmarkSimulateIteration(b *testing.B) {
	sess, err := lancet.NewSession(lancet.GPT2SMoE(0), lancet.MustCluster("V100", 16))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sess.Lancet(lancet.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionBuild measures graph construction (IR emission for the
// full training iteration).
func BenchmarkSessionBuild(b *testing.B) {
	cluster := lancet.MustCluster("V100", 16)
	for i := 0; i < b.N; i++ {
		if _, err := lancet.NewSession(lancet.GPT2LMoE(0), cluster); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Extension experiments (paper Sec. 8 discussion items).
// ---------------------------------------------------------------------------

// BenchmarkSharedExpertOverlap regenerates the shared-expert overlap table.
func BenchmarkSharedExpertOverlap(b *testing.B) { benchExperiment(b, "shared-expert") }

// BenchmarkCommPriority regenerates the all-to-all prioritization table.
func BenchmarkCommPriority(b *testing.B) { benchExperiment(b, "comm-priority") }

// BenchmarkLoadSkew regenerates the skewed-routing table.
func BenchmarkLoadSkew(b *testing.B) { benchExperiment(b, "skew") }

// BenchmarkImbalance regenerates the end-to-end hot-expert table.
func BenchmarkImbalance(b *testing.B) { benchExperiment(b, "imbalance") }

// BenchmarkFSDPInterference regenerates the ZeRO-3 interference table.
func BenchmarkFSDPInterference(b *testing.B) { benchExperiment(b, "fsdp") }

// BenchmarkShadowingComparison regenerates the FasterMoE-vs-Lancet skew
// table.
func BenchmarkShadowingComparison(b *testing.B) { benchExperiment(b, "fastermoe") }
